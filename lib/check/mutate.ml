module C = Analysis.Constraints

type mutation =
  | Drop_check
  | Swap_orders
  | Widen_offset
  | Delete_amov
  | Drop_advanced
  | Clear_mask_bit
  | Hoist_across_hazard
  | Delete_instr
  | Over_rotate
  | Shift_witness_range
  | Widen_witness_range
  | Swap_witness_origin
  | Drop_witness
  | Forge_witness
  | Desync_region_cert
  | Bogus_witness_endpoint

let mutation_name = function
  | Drop_check -> "drop_check"
  | Swap_orders -> "swap_orders"
  | Widen_offset -> "widen_offset"
  | Delete_amov -> "delete_amov"
  | Drop_advanced -> "drop_advanced"
  | Clear_mask_bit -> "clear_mask_bit"
  | Hoist_across_hazard -> "hoist_across_hazard"
  | Delete_instr -> "delete_instr"
  | Over_rotate -> "over_rotate"
  | Shift_witness_range -> "shift_witness_range"
  | Widen_witness_range -> "widen_witness_range"
  | Swap_witness_origin -> "swap_witness_origin"
  | Drop_witness -> "drop_witness"
  | Forge_witness -> "forge_witness"
  | Desync_region_cert -> "desync_region_cert"
  | Bogus_witness_endpoint -> "bogus_witness_endpoint"

let expected_rules = function
  | Drop_check -> [ Verifier.Queue_uncovered ]
  | Swap_orders ->
    [ Verifier.Alloc_constraint; Verifier.Alloc_window; Verifier.Queue_uncovered ]
  | Widen_offset -> [ Verifier.Alloc_window ]
  | Delete_amov -> [ Verifier.Annot_alloc_sync ]
  | Drop_advanced -> [ Verifier.Alat_unmarked ]
  | Clear_mask_bit -> [ Verifier.Mask_uncovered ]
  | Hoist_across_hazard -> [ Verifier.Sched_hazard ]
  | Delete_instr -> [ Verifier.Sched_complete ]
  | Over_rotate -> [ Verifier.Queue_base_sync ]
  | Shift_witness_range -> [ Verifier.Cert_derivation ]
  | Widen_witness_range -> [ Verifier.Cert_separation ]
  | Swap_witness_origin -> [ Verifier.Cert_derivation ]
  | Drop_witness -> [ Verifier.Cert_dep_missing ]
  | Forge_witness -> [ Verifier.Cert_edge_kept ]
  | Desync_region_cert -> [ Verifier.Cert_region_sync ]
  | Bogus_witness_endpoint -> [ Verifier.Cert_endpoints ]

(* ---- deep copies: only the parts mutations touch need to be fresh
   (bundles array, allocation hash tables); instructions and edge
   lists are immutable and can be shared *)

let copy_allocation (a : C.allocation) =
  {
    C.order = Hashtbl.copy a.C.order;
    base = Hashtbl.copy a.C.base;
    p_bit = Hashtbl.copy a.C.p_bit;
    c_bit = Hashtbl.copy a.C.c_bit;
  }

let with_region (o : Opt.Optimizer.t) region = { o with Opt.Optimizer.region }

let map_bundles (o : Opt.Optimizer.t) f =
  let r = o.Opt.Optimizer.region in
  with_region o
    { r with Ir.Region.bundles = Array.map (List.map f) r.Ir.Region.bundles }

let remove_from_bundles (o : Opt.Optimizer.t) id =
  let r = o.Opt.Optimizer.region in
  with_region o
    {
      r with
      Ir.Region.bundles =
        Array.map
          (List.filter (fun (i : Ir.Instr.t) -> i.id <> id))
          r.Ir.Region.bundles;
    }

(* ---- execution-order view and the reordered (check-requiring)
   dependence pairs, mirroring the verifier's definition *)

let exec_positions (region : Ir.Region.t) =
  let pos = Hashtbl.create 64 in
  List.iteri
    (fun idx (i : Ir.Instr.t) ->
      if not (Hashtbl.mem pos i.id) then Hashtbl.replace pos i.id idx)
    (Ir.Region.instrs region);
  pos

let required_pairs (o : Opt.Optimizer.t) =
  let pos = exec_positions o.Opt.Optimizer.region in
  List.filter
    (fun (e : Analysis.Depgraph.edge) ->
      (not
         (e.kind = Analysis.Depgraph.Real
         && e.strength = Analysis.Depgraph.Hard))
      &&
      match Hashtbl.find_opt pos e.first, Hashtbl.find_opt pos e.second with
      | Some pf, Some ps -> ps < pf
      | _ -> false)
    (Analysis.Depgraph.edges o.Opt.Optimizer.deps)

let scheme (o : Opt.Optimizer.t) =
  o.Opt.Optimizer.policy_used.Sched.Policy.scheme

let ar_count (o : Opt.Optimizer.t) =
  o.Opt.Optimizer.policy_used.Sched.Policy.ar_count

(* ---- the individual mutations; each returns None when the artifact
   offers no viable target *)

let drop_check (o : Opt.Optimizer.t) =
  match scheme o, o.Opt.Optimizer.alloc_result with
  | Sched.Policy.Queue_scheme, Some res -> (
    let a = res.Sched.Smarq_alloc.allocation in
    match
      List.find_opt
        (fun (e : Analysis.Depgraph.edge) -> Hashtbl.mem a.C.c_bit e.first)
        (required_pairs o)
    with
    | None -> None
    | Some e ->
      let f = e.first in
      let a' = copy_allocation a in
      Hashtbl.remove a'.C.c_bit f;
      let res' =
        {
          res with
          Sched.Smarq_alloc.allocation = a';
          check_edges =
            List.filter
              (fun (ce : C.edge) -> ce.C.first <> f)
              res.Sched.Smarq_alloc.check_edges;
        }
      in
      let o' =
        map_bundles o (fun (i : Ir.Instr.t) ->
            if i.id <> f then i
            else
              match Ir.Instr.annot i with
              | Ir.Annot.Queue { offset; p; _ } ->
                Ir.Instr.with_annot i
                  (if p then Ir.Annot.queue ~offset ~p:true ~c:false
                   else Ir.Annot.none)
              | _ -> i)
      in
      Some { o' with Opt.Optimizer.alloc_result = Some res' })
  | _ -> None

let swap_orders (o : Opt.Optimizer.t) =
  match scheme o, o.Opt.Optimizer.alloc_result with
  | Sched.Policy.Queue_scheme, Some res
    when res.Sched.Smarq_alloc.amovs = [] -> (
    let a = res.Sched.Smarq_alloc.allocation in
    let strictly_ordered (e : C.edge) =
      match
        Hashtbl.find_opt a.C.order e.C.first,
        Hashtbl.find_opt a.C.order e.C.second
      with
      | Some o1, Some o2 -> o1 < o2
      | _ -> false
    in
    match List.find_opt strictly_ordered res.Sched.Smarq_alloc.check_edges with
    | None -> None
    | Some e ->
      let f = e.C.first and s = e.C.second in
      let a' = copy_allocation a in
      let of_ = Hashtbl.find a'.C.order f and os = Hashtbl.find a'.C.order s in
      Hashtbl.replace a'.C.order f os;
      Hashtbl.replace a'.C.order s of_;
      let res' = { res with Sched.Smarq_alloc.allocation = a' } in
      let o' =
        map_bundles o (fun (i : Ir.Instr.t) ->
            match Ir.Instr.annot i with
            | Ir.Annot.Queue { p; c; _ } -> (
              match
                Hashtbl.find_opt a'.C.order i.id,
                Hashtbl.find_opt a'.C.base i.id
              with
              | Some od, Some b ->
                Ir.Instr.with_annot i (Ir.Annot.queue ~offset:(od - b) ~p ~c)
              | _ -> i)
            | _ -> i)
      in
      Some { o' with Opt.Optimizer.alloc_result = Some res' })
  | _ -> None

let widen_offset (o : Opt.Optimizer.t) =
  match scheme o with
  | Sched.Policy.Queue_scheme | Sched.Policy.Naive_queue_scheme -> (
    let target =
      List.find_opt
        (fun (i : Ir.Instr.t) ->
          match Ir.Instr.annot i with Ir.Annot.Queue _ -> true | _ -> false)
        (Ir.Region.instrs o.Opt.Optimizer.region)
    in
    match target with
    | None -> None
    | Some t ->
      Some
        (map_bundles o (fun (i : Ir.Instr.t) ->
             if i.id <> t.id then i
             else
               match Ir.Instr.annot i with
               | Ir.Annot.Queue { p; c; _ } ->
                 Ir.Instr.with_annot i
                   (Ir.Annot.queue ~offset:(ar_count o) ~p ~c)
               | _ -> i)))
  | _ -> None

let delete_amov (o : Opt.Optimizer.t) =
  match o.Opt.Optimizer.alloc_result with
  | Some res when res.Sched.Smarq_alloc.amovs <> [] ->
    let m = List.hd res.Sched.Smarq_alloc.amovs in
    Some (remove_from_bundles o m.Sched.Smarq_alloc.amov_id)
  | _ -> None

let drop_advanced (o : Opt.Optimizer.t) =
  match scheme o with
  | Sched.Policy.Alat_scheme -> (
    let instr_at id =
      List.find_opt
        (fun (i : Ir.Instr.t) -> i.id = id)
        (Ir.Region.instrs o.Opt.Optimizer.region)
    in
    match required_pairs o with
    | [] -> None
    | e :: _ -> (
      match instr_at e.second with
      | Some s when Ir.Instr.is_load s ->
        Some
          (map_bundles o (fun (i : Ir.Instr.t) ->
               if i.id = s.id then Ir.Instr.with_annot i Ir.Annot.none else i))
      | _ -> None))
  | _ -> None

let clear_mask_bit (o : Opt.Optimizer.t) =
  match scheme o with
  | Sched.Policy.Mask_scheme -> (
    let instr_at id =
      List.find_opt
        (fun (i : Ir.Instr.t) -> i.id = id)
        (Ir.Region.instrs o.Opt.Optimizer.region)
    in
    let target =
      List.find_map
        (fun (e : Analysis.Depgraph.edge) ->
          match instr_at e.second, instr_at e.first with
          | Some s, Some f -> (
            match Ir.Instr.annot s, Ir.Instr.annot f with
            | ( Ir.Annot.Mask { set_index = Some k; _ },
                Ir.Annot.Mask { check_mask; _ } )
              when check_mask land (1 lsl k) <> 0 ->
              Some (f.Ir.Instr.id, k)
            | _ -> None)
          | _ -> None)
        (required_pairs o)
    in
    match target with
    | None -> None
    | Some (fid, k) ->
      Some
        (map_bundles o (fun (i : Ir.Instr.t) ->
             if i.id <> fid then i
             else
               match Ir.Instr.annot i with
               | Ir.Annot.Mask { set_index; check_mask } ->
                 Ir.Instr.with_annot i
                   (Ir.Annot.mask ~set_index
                      ~check_mask:(check_mask land lnot (1 lsl k)))
               | _ -> i)))
  | _ -> None

let hoist_across_hazard (o : Opt.Optimizer.t) =
  let region = o.Opt.Optimizer.region in
  let cyc = Hashtbl.create 64 in
  Array.iteri
    (fun cycle bundle ->
      List.iter
        (fun (i : Ir.Instr.t) ->
          if not (Hashtbl.mem cyc i.id) then Hashtbl.replace cyc i.id cycle)
        bundle)
    region.Ir.Region.bundles;
  let hazards = o.Opt.Optimizer.hazards in
  let pick = ref None in
  Array.iteri
    (fun p preds ->
      if !pick = None then
        let id = hazards.Sched.Hazards.ids.(p) in
        List.iter
          (fun pd ->
            if !pick = None then
              match Hashtbl.find_opt cyc pd, Hashtbl.find_opt cyc id with
              | Some cp, Some cs when cs > cp -> pick := Some (pd, id, cp)
              | _ -> ())
          preds)
    hazards.Sched.Hazards.preds_of;
  match !pick with
  | None -> None
  | Some (_, succ, pred_cycle) ->
    let instr = ref None in
    let bundles =
      Array.map
        (List.filter (fun (i : Ir.Instr.t) ->
             if i.id = succ then begin
               instr := Some i;
               false
             end
             else true))
        region.Ir.Region.bundles
    in
    (match !instr with
    | None -> None
    | Some i ->
      bundles.(pred_cycle) <- bundles.(pred_cycle) @ [ i ];
      Some (with_region o { region with Ir.Region.bundles }))

let delete_instr (o : Opt.Optimizer.t) =
  let body = o.Opt.Optimizer.region.Ir.Region.source.Ir.Superblock.body in
  match body with
  | [] -> None
  | i :: _ -> Some (remove_from_bundles o i.Ir.Instr.id)

let over_rotate (o : Opt.Optimizer.t) =
  match scheme o with
  | Sched.Policy.Queue_scheme | Sched.Policy.Naive_queue_scheme ->
    (* a ROTATE matters only if an annotated op executes after it *)
    let instrs = Ir.Region.instrs o.Opt.Optimizer.region in
    let rec find_rot = function
      | [] -> None
      | (i : Ir.Instr.t) :: rest -> (
        match i.op with
        | Ir.Instr.Rotate _
          when List.exists
                 (fun (j : Ir.Instr.t) ->
                   match Ir.Instr.annot j with
                   | Ir.Annot.Queue _ -> true
                   | _ -> false)
                 rest ->
          Some i.id
        | _ -> find_rot rest)
    in
    (match find_rot instrs with
    | None -> None
    | Some rid ->
      Some
        (map_bundles o (fun (i : Ir.Instr.t) ->
             if i.id <> rid then i
             else
               match i.op with
               | Ir.Instr.Rotate k ->
                 Ir.Instr.make ~id:i.id (Ir.Instr.Rotate (k + 1))
               | _ -> i)))
  | _ -> None

(* ---- witness-corruption mutations: rebuild the certificate from a
   tampered witness list, keeping the region's certified list in sync
   (each class targets exactly one verifier rule) *)

let with_cert (o : Opt.Optimizer.t) ws =
  let cert = Analysis.Disamb.of_witnesses ws in
  let region =
    {
      o.Opt.Optimizer.region with
      Ir.Region.certified_no_alias = Analysis.Disamb.pairs cert;
    }
  in
  { o with Opt.Optimizer.cert = Some cert; region }

let witnesses_of (o : Opt.Optimizer.t) =
  match o.Opt.Optimizer.cert with
  | None -> []
  | Some c -> Analysis.Disamb.witnesses c

(* Shift one endpoint's offset set by +1: the claim stops being
   entailed by the replayed derivation. *)
let shift_witness_range (o : Opt.Optimizer.t) =
  match witnesses_of o with
  | [] -> None
  | (w : Analysis.Disamb.witness) :: rest ->
    let off = w.Analysis.Disamb.x.Analysis.Disamb.off in
    let off' =
      {
        off with
        Analysis.Absint.lo = off.Analysis.Absint.lo + 1;
        hi = off.Analysis.Absint.hi + 1;
        rem =
          (if off.Analysis.Absint.stride = 0 then 0
           else (off.Analysis.Absint.rem + 1) mod off.Analysis.Absint.stride);
      }
    in
    Some
      (with_cert o
         ({ w with Analysis.Disamb.x = { w.Analysis.Disamb.x with off = off' } }
          :: rest))

(* Widen one endpoint's range until it swallows the other: entailment
   still holds (the claim only got weaker) but the claimed facts no
   longer imply disjointness. *)
let widen_witness_range (o : Opt.Optimizer.t) =
  let ws = witnesses_of o in
  match
    List.partition
      (fun (w : Analysis.Disamb.witness) ->
        w.Analysis.Disamb.reason = Analysis.Disamb.Ranges)
      ws
  with
  | [], _ -> None
  | w :: same, rest ->
    let fx = w.Analysis.Disamb.x and fy = w.Analysis.Disamb.y in
    let cx = fx.Analysis.Disamb.off and cy = fy.Analysis.Disamb.off in
    let off' =
      {
        Analysis.Absint.lo = min cx.Analysis.Absint.lo cy.Analysis.Absint.lo;
        hi =
          max cx.Analysis.Absint.hi
            (cy.Analysis.Absint.hi + fy.Analysis.Disamb.width);
        stride = 1;
        rem = 0;
      }
    in
    Some
      (with_cert o
         (({ w with Analysis.Disamb.x = { fx with off = off' } } :: same)
          @ rest))

(* Re-anchor one endpoint on a fabricated origin: replay derives a
   different anchor, so the claim is no longer entailed. *)
let swap_witness_origin (o : Opt.Optimizer.t) =
  match witnesses_of o with
  | [] -> None
  | (w : Analysis.Disamb.witness) :: rest ->
    let fx = w.Analysis.Disamb.x in
    let fx' =
      {
        fx with
        Analysis.Disamb.origin =
          Analysis.Absint.Opaque fx.Analysis.Disamb.instr;
      }
    in
    Some (with_cert o ({ w with Analysis.Disamb.x = fx' } :: rest))

(* Silently drop a witness (and its pair from the region list): the
   pair now has neither a dependence edge nor a proof. *)
let drop_witness (o : Opt.Optimizer.t) =
  match witnesses_of o with
  | [] -> None
  | _ :: rest when o.Opt.Optimizer.cert <> None -> Some (with_cert o rest)
  | _ -> None

(* Fabricate a witness for a pair that genuinely depends (it carries a
   Real edge): the certified pair keeps its dependence edge. *)
let forge_witness (o : Opt.Optimizer.t) =
  match o.Opt.Optimizer.cert with
  | None -> None
  | Some _ -> (
    let body = o.Opt.Optimizer.region.Ir.Region.source.Ir.Superblock.body in
    let by_id = Hashtbl.create 64 in
    List.iter
      (fun (i : Ir.Instr.t) -> Hashtbl.replace by_id i.Ir.Instr.id i)
      body;
    let target =
      List.find_opt
        (fun (e : Analysis.Depgraph.edge) ->
          e.Analysis.Depgraph.kind = Analysis.Depgraph.Real
          && Hashtbl.mem by_id e.Analysis.Depgraph.first
          && Hashtbl.mem by_id e.Analysis.Depgraph.second)
        (Analysis.Depgraph.edges o.Opt.Optimizer.deps)
    in
    match target with
    | None -> None
    | Some e ->
      let width id =
        Option.value
          (Ir.Instr.mem_width (Hashtbl.find by_id id))
          ~default:4
      in
      let fact instr k =
        {
          Analysis.Disamb.instr;
          width = width instr;
          origin = Analysis.Absint.Const;
          scale = 0;
          off = Analysis.Absint.point k;
        }
      in
      let w =
        {
          Analysis.Disamb.x = fact e.Analysis.Depgraph.first 0;
          y = fact e.Analysis.Depgraph.second 4096;
          reason = Analysis.Disamb.Ranges;
        }
      in
      Some (with_cert o (w :: witnesses_of o)))

(* Desynchronize the region's certified list from the certificate. *)
let desync_region_cert (o : Opt.Optimizer.t) =
  match o.Opt.Optimizer.cert with
  | None -> None
  | Some _ ->
    let region = o.Opt.Optimizer.region in
    let max_id =
      List.fold_left
        (fun acc (i : Ir.Instr.t) -> max acc i.Ir.Instr.id)
        0 region.Ir.Region.source.Ir.Superblock.body
    in
    Some
      (with_region o
         {
           region with
           Ir.Region.certified_no_alias =
             (max_id + 1, max_id + 2) :: region.Ir.Region.certified_no_alias;
         })

(* Point a witness at a non-memory instruction. *)
let bogus_witness_endpoint (o : Opt.Optimizer.t) =
  match witnesses_of o with
  | [] -> None
  | (w : Analysis.Disamb.witness) :: rest -> (
    let body = o.Opt.Optimizer.region.Ir.Region.source.Ir.Superblock.body in
    match
      List.find_opt (fun (i : Ir.Instr.t) -> not (Ir.Instr.is_memory i)) body
    with
    | None -> None
    | Some i ->
      let fx =
        { w.Analysis.Disamb.x with Analysis.Disamb.instr = i.Ir.Instr.id }
      in
      Some (with_cert o ({ w with Analysis.Disamb.x = fx } :: rest)))

let mutants (o : Opt.Optimizer.t) =
  List.filter_map
    (fun (m, apply) -> Option.map (fun o' -> (m, o')) (apply o))
    [
      (Drop_check, drop_check);
      (Swap_orders, swap_orders);
      (Widen_offset, widen_offset);
      (Delete_amov, delete_amov);
      (Drop_advanced, drop_advanced);
      (Clear_mask_bit, clear_mask_bit);
      (Hoist_across_hazard, hoist_across_hazard);
      (Delete_instr, delete_instr);
      (Over_rotate, over_rotate);
      (Shift_witness_range, shift_witness_range);
      (Widen_witness_range, widen_witness_range);
      (Swap_witness_origin, swap_witness_origin);
      (Drop_witness, drop_witness);
      (Forge_witness, forge_witness);
      (Desync_region_cert, desync_region_cert);
      (Bogus_witness_endpoint, bogus_witness_endpoint);
    ]

type outcome = {
  mutation : mutation;
  killed : bool;
  rules_hit : Verifier.rule list;
}

type summary = {
  baseline_pass : bool;
  total : int;
  killed : int;
  outcomes : outcome list;
}

let run ~issue_width ~mem_ports ~latency (o : Opt.Optimizer.t) =
  let verify = Verifier.verify ~issue_width ~mem_ports ~latency in
  let baseline_pass = verify o = Verifier.Pass in
  let outcomes =
    List.map
      (fun (m, o') ->
        let rules_hit =
          match verify o' with
          | Verifier.Pass -> []
          | Verifier.Reject vs ->
            List.sort_uniq compare
              (List.map (fun (v : Verifier.violation) -> v.Verifier.rule) vs)
        in
        let expected = expected_rules m in
        let killed = List.exists (fun r -> List.mem r expected) rules_hit in
        { mutation = m; killed; rules_hit })
      (mutants o)
  in
  {
    baseline_pass;
    total = List.length outcomes;
    killed = List.length (List.filter (fun (oc : outcome) -> oc.killed) outcomes);
    outcomes;
  }

let pp_summary ppf s =
  Format.fprintf ppf "baseline %s, %d/%d mutants killed"
    (if s.baseline_pass then "pass" else "REJECT")
    s.killed s.total;
  List.iter
    (fun (oc : outcome) ->
      if not oc.killed then
        Format.fprintf ppf "@ SURVIVOR: %s (hit: %s)"
          (mutation_name oc.mutation)
          (String.concat "," (List.map Verifier.rule_name oc.rules_hit)))
    s.outcomes
