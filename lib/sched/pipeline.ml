type t =
  | Fast
  | Reference

let is_reference = function Reference -> true | Fast -> false
let to_string = function Fast -> "fast" | Reference -> "reference"

let of_string = function
  | "fast" -> Some Fast
  | "reference" | "ref" | "seed" -> Some Reference
  | _ -> None
