lib/opt/optimizer.mli: Ir Sched
