(** Architectural registers of the guest/optimizer IR.

    The guest ISA exposes integer registers [R 0 .. R (int_count - 1)]
    and floating-point registers [F 0 .. F (float_count - 1)].  The
    optimizer additionally uses temporary registers [T n] that never
    appear in guest code; they are used for store-to-load forwarding and
    other value-motion transformations and are dead at region exits. *)

type t =
  | R of int  (** guest integer register *)
  | F of int  (** guest floating-point register *)
  | T of int  (** optimizer temporary, dead at region exits *)

val int_count : int
(** Number of guest integer registers (32). *)

val float_count : int
(** Number of guest floating-point registers (32). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val is_temp : t -> bool
(** [is_temp r] is true iff [r] is an optimizer temporary. *)

val all_guest : t list
(** Every guest-visible register, integer then floating-point. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
