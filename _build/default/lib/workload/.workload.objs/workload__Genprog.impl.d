lib/workload/genprog.ml: Array Builder Ir Kernels List Printf
