(** Abstract interpretation of superblock bodies for address
    certification.

    Superblock bodies are straight-line (side exits leave the region,
    they never join back), so a single forward pass computes, for every
    register at every point, a sound abstract value of the form

      [scale * origin + k],  [k] in a bounded stride set

    where the origin is an execution-point-independent anchor: a pure
    constant, the value a guest register held {e at region entry}, or
    the (unknown but fixed) result of one specific instruction.  Two
    memory operations whose abstract addresses share an origin and
    scale can then be compared exactly on their offset sets — through
    base copies, [base += stride] bumps between unrolled iterations,
    and masked/scaled index arithmetic — even though the origin's
    runtime value is unknown.

    The domain deliberately never says "top" for a register: a value
    the transfer functions cannot model becomes [Opaque id] of its
    defining instruction, which still supports equality-based
    reasoning (same base register, not redefined in between).  Only
    addresses whose offsets overflow the magnitude guard are dropped
    ({!address} returns [None]). *)

(** Execution-point-independent anchor of an abstract value. *)
type origin =
  | Const  (** no symbolic part: the value is the offset set itself *)
  | Entry of Ir.Reg.t  (** the value register [r] held at region entry *)
  | Opaque of int  (** the unmodelled result of instruction [id] *)

(** Bounded stride set: the integers [k] with [lo <= k <= hi] and,
    when [stride > 0], [k = rem (mod stride)].  [stride = 0] marks a
    singleton ([lo = hi]); [stride > 0] implies [0 <= rem < stride]. *)
type cset = {
  lo : int;
  hi : int;
  stride : int;
  rem : int;
}

type value = {
  origin : origin;
  scale : int;  (** 0 exactly when [origin] is [Const] *)
  off : cset;
}

val origin_equal : origin -> origin -> bool
val point : int -> cset

val cset_add : cset -> cset -> cset option
(** [None] when a bound exceeds the magnitude guard. *)

val cset_mem : cset -> int -> bool
(** Set membership, range and congruence. *)

val cset_subset : cset -> cset -> bool
(** [cset_subset inner outer]: every member of [inner] is a member of
    [outer] — the entailment check witness replay relies on. *)

(** Why two abstract addresses cannot overlap. *)
type sep =
  | Ranges  (** the offset intervals, width-extended, are disjoint *)
  | Congruence of int
      (** no offset difference inside the overlap window matches the
          residue class mod the carried stride gcd *)

val separated : value -> int -> value -> int -> sep option
(** [separated v1 w1 v2 w2] proves the byte ranges
    [[a1, a1+w1)] and [[a2, a2+w2)] disjoint for every concretization,
    or returns [None].  Requires equal origins and scales — with
    different anchors nothing relates the two addresses. *)

type t

val analyze : body:Ir.Instr.t list -> t
(** One forward pass over the body in original program order. *)

val address : t -> int -> (value * int) option
(** Abstract address and access width of the memory operation with the
    given instruction id; [None] for non-memory instructions and for
    addresses whose offsets overflowed the magnitude guard. *)

val pp_origin : Format.formatter -> origin -> unit
val pp_cset : Format.formatter -> cset -> unit
val pp_value : Format.formatter -> value -> unit
