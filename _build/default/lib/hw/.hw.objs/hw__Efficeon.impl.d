lib/hw/efficeon.ml: Access Array Detector Ir Printf
