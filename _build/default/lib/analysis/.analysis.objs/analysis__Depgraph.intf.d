lib/analysis/depgraph.mli: Format Ir May_alias
