examples/scheme_comparison.ml: Array Frontend List Printf Runtime Sched Smarq String Sys Vliw Workload
