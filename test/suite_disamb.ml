(* Static alias certifier: abstract domain precision, disambiguator
   verdicts and witnesses, and the oracle-backed soundness property —
   a certified pair must never overlap at runtime, under any scheme. *)

open Helpers
module I = Ir.Instr
module AI = Analysis.Absint
module D = Analysis.Disamb
module MA = Analysis.May_alias

let check_verdict = Alcotest.of_pp MA.pp_verdict

(* ---- abstract domain ---- *)

let test_absint_const_folding () =
  reset_ids ();
  let m1 = movi (r 1) 100 in
  let a1 = mk (I.Binop (I.Add, r 2, I.Reg (r 1), I.Imm 28)) in
  let l1 = ld (f 0) (r 2) 0 in
  let t = AI.analyze ~body:[ m1; a1; l1 ] in
  match AI.address t l1.I.id with
  | None -> Alcotest.fail "address not computed"
  | Some (v, w) ->
    Alcotest.(check int) "width" 4 w;
    Alcotest.(check bool) "const origin" true
      (AI.origin_equal v.AI.origin AI.Const);
    Alcotest.(check int) "lo" 128 v.AI.off.AI.lo;
    Alcotest.(check int) "hi" 128 v.AI.off.AI.hi

let test_absint_entry_bump () =
  reset_ids ();
  (* the unrolled-iteration shape: same base register, bumped between *)
  let l1 = ld (f 0) (r 1) 8 in
  let b1 = mk (I.Binop (I.Add, r 1, I.Reg (r 1), I.Imm 64)) in
  let l2 = ld (f 1) (r 1) 8 in
  let t = AI.analyze ~body:[ l1; b1; l2 ] in
  (match AI.address t l1.I.id, AI.address t l2.I.id with
  | Some (v1, _), Some (v2, _) ->
    Alcotest.(check bool) "same entry origin" true
      (AI.origin_equal v1.AI.origin v2.AI.origin);
    Alcotest.(check int) "first offset" 8 v1.AI.off.AI.lo;
    Alcotest.(check int) "second offset" 72 v2.AI.off.AI.lo
  | _ -> Alcotest.fail "addresses not computed")

let test_absint_mask_stride () =
  reset_ids ();
  (* And with 0xf8 leaves a multiple of 8 in [0, 0xf8] *)
  let a1 = mk (I.Binop (I.And, r 2, I.Reg (r 4), I.Imm 0xf8)) in
  let a2 = mk (I.Binop (I.Add, r 3, I.Reg (r 1), I.Reg (r 2))) in
  let l1 = ld (f 0) (r 3) 0 in
  let t = AI.analyze ~body:[ a1; a2; l1 ] in
  match AI.address t l1.I.id with
  | None -> Alcotest.fail "address not computed"
  | Some (v, _) ->
    Alcotest.(check int) "lo" 0 v.AI.off.AI.lo;
    Alcotest.(check int) "hi" 0xf8 v.AI.off.AI.hi;
    Alcotest.(check int) "stride" 8 v.AI.off.AI.stride;
    Alcotest.(check int) "rem" 0 v.AI.off.AI.rem

let test_separated_cases () =
  let entry = AI.Entry (r 1) in
  let v off = { AI.origin = entry; scale = 1; off } in
  let pt n = AI.point n in
  (* range separation: [0,8) vs [8,16) *)
  (match AI.separated (v (pt 0)) 8 (v (pt 8)) 8 with
  | Some AI.Ranges -> ()
  | _ -> Alcotest.fail "adjacent ranges should separate");
  (* overlap: [0,8) vs [4,12) *)
  (match AI.separated (v (pt 0)) 8 (v (pt 4)) 8 with
  | None -> ()
  | Some _ -> Alcotest.fail "overlapping ranges must not separate");
  (* congruence: multiples of 16 vs the byte range [8, 16) *)
  let strided = { AI.lo = 0; hi = 240; stride = 16; rem = 0 } in
  (match AI.separated (v strided) 8 (v (pt 8)) 8 with
  | Some (AI.Congruence _) -> ()
  | Some AI.Ranges -> Alcotest.fail "ranges cannot prove this one"
  | None -> Alcotest.fail "congruence should separate");
  (* same residue class: multiples of 16 vs offset 16 *)
  (match AI.separated (v strided) 8 (v (pt 16)) 8 with
  | None -> ()
  | Some _ -> Alcotest.fail "residue hit must not separate");
  (* different origins prove nothing *)
  let other = { AI.origin = AI.Entry (r 2); scale = 1; off = pt 64 } in
  match AI.separated (v (pt 0)) 8 other 8 with
  | None -> ()
  | Some _ -> Alcotest.fail "cross-origin separation is unsound"

(* ---- disambiguator ---- *)

(* Two rmw iterations around a base bump: the cross-iteration pairs
   are May (the base register is redefined between them) and exactly
   the ones the certifier proves. *)
let bump_body () =
  reset_ids ();
  let l1 = ld ~width:8 (f 0) (r 1) 0 in
  let s1 = st ~width:8 (I.Reg (f 0)) (r 1) 0 in
  let b1 = mk (I.Binop (I.Add, r 1, I.Reg (r 1), I.Imm 64)) in
  let l2 = ld ~width:8 (f 1) (r 1) 0 in
  let s2 = st ~width:8 (I.Reg (f 1)) (r 1) 0 in
  ([ l1; s1; b1; l2; s2 ], l1, s1, l2, s2)

let test_certify_bump_pairs () =
  let body, l1, s1, l2, s2 = bump_body () in
  let alias = MA.analyze ~body () in
  Alcotest.check check_verdict "cross-iteration pair starts may"
    MA.May_alias (MA.verdict alias s1 l2);
  let cert = D.certify ~alias ~body in
  Alcotest.(check bool) "store1/load2 certified" true
    (D.no_alias cert s1.I.id l2.I.id);
  Alcotest.(check bool) "store1/store2 certified" true
    (D.no_alias cert s1.I.id s2.I.id);
  Alcotest.(check bool) "load1/store2 certified" true
    (D.no_alias cert l1.I.id s2.I.id);
  (* same-iteration pairs are base-exact, never May, never certified *)
  Alcotest.(check bool) "same-iteration pair not certified" false
    (D.no_alias cert l1.I.id s1.I.id);
  (* witnesses carry range separation anchored on the same origin *)
  List.iter
    (fun (w : D.witness) ->
      Alcotest.(check bool) "witness origins match" true
        (AI.origin_equal w.D.x.D.origin w.D.y.D.origin);
      match w.D.reason with
      | D.Ranges -> ()
      | D.Congruence _ -> Alcotest.fail "bump pairs separate by range")
    (D.witnesses cert);
  (* installing the certificate upgrades the verdicts *)
  MA.set_certified alias (D.pairs cert);
  Alcotest.check check_verdict "verdict upgraded to no-alias" MA.No_alias
    (MA.verdict alias s1 l2)

let test_certify_congruence_probe () =
  reset_ids ();
  (* store to [base+8, base+16); probe at base + 16k: disjoint mod 16 *)
  let s1 = st ~width:8 (I.Reg (f 28)) (r 1) 8 in
  let a1 = mk (I.Binop (I.And, r 26, I.Reg (r 4), I.Imm 127)) in
  let a2 = mk (I.Binop (I.Mul, r 26, I.Reg (r 26), I.Imm 16)) in
  let a3 = mk (I.Binop (I.Add, r 25, I.Reg (r 1), I.Reg (r 26))) in
  let l1 = ld ~width:8 (f 30) (r 25) 0 in
  let body = [ s1; a1; a2; a3; l1 ] in
  let alias = MA.analyze ~body () in
  Alcotest.check check_verdict "probe pair starts may" MA.May_alias
    (MA.verdict alias s1 l1);
  let cert = D.certify ~alias ~body in
  Alcotest.(check bool) "probe certified" true
    (D.no_alias cert s1.I.id l1.I.id);
  match D.witnesses cert with
  | [ w ] ->
    (match w.D.reason with
    | D.Congruence g ->
      Alcotest.(check bool) "gcd divides the probe stride" true
        (g > 1 && 16 mod g = 0)
    | D.Ranges -> Alcotest.fail "expected a congruence witness")
  | ws -> Alcotest.failf "expected one witness, got %d" (List.length ws)

let test_cross_base_not_certified () =
  reset_ids ();
  (* two unrelated entry bases: nothing relates them, no certificate *)
  let s1 = st ~width:8 (I.Imm 1) (r 1) 0 in
  let l1 = ld ~width:8 (f 0) (r 2) 4096 in
  let body = [ s1; l1 ] in
  let alias = MA.analyze ~body () in
  let cert = D.certify ~alias ~body in
  Alcotest.(check int) "no pair certified" 0 (D.count cert);
  Alcotest.check check_verdict "verdict still may" MA.May_alias
    (MA.verdict alias s1 l1)

let test_known_alias_never_certified () =
  let body, _, s1, l2, _ = bump_body () in
  (* a rollback taught the runtime this pair aliased: even though the
     engine could prove the addresses apart (it cannot — the pair
     genuinely never overlaps — but the point is precedence), known
     pairs are excluded from certification *)
  let alias = MA.analyze ~known_alias:[ (s1.I.id, l2.I.id) ] ~body () in
  let cert = D.certify ~alias ~body in
  Alcotest.(check bool) "known pair not certified" false
    (D.no_alias cert s1.I.id l2.I.id)

(* ---- soundness: certified pairs never overlap when executed ---- *)

let overlap_of_trace (tr : Frontend.Interp.trace) cert =
  let events = tr.Frontend.Interp.events in
  List.exists
    (fun (e1 : Frontend.Interp.mem_event) ->
      List.exists
        (fun (e2 : Frontend.Interp.mem_event) ->
          e1.Frontend.Interp.instr_id < e2.Frontend.Interp.instr_id
          && (e1.Frontend.Interp.is_store || e2.Frontend.Interp.is_store)
          && D.no_alias cert e1.Frontend.Interp.instr_id
               e2.Frontend.Interp.instr_id
          && Hw.Access.overlap e1.Frontend.Interp.range
               e2.Frontend.Interp.range)
        events)
    events

let certify_soundness_prop seed =
  let params =
    {
      Workload.Genprog.default_params with
      Workload.Genprog.n_instrs = 60;
      mem_fraction = 0.45;
      collide_fraction = 0.3;
      n_bases = 3;
    }
  in
  let sb, bases = Workload.Genprog.superblock ~seed ~params in
  let body = sb.Ir.Superblock.body in
  let alias = MA.analyze ~body () in
  let cert = D.certify ~alias ~body in
  let machine = Vliw.Machine.create () in
  List.iter
    (fun (reg, v) -> Vliw.Machine.set_reg machine reg v)
    (Workload.Genprog.setup_machine_regs ~params ~bases);
  let tr = Frontend.Interp.trace_superblock machine sb in
  if overlap_of_trace tr cert then
    QCheck.Test.fail_report
      (Printf.sprintf "seed %d: certified pair overlapped at runtime" seed)
  else true

(* End-to-end: every scheme, certification on, final state must match
   the interpreter and no alias fault may land on a certified pair. *)
let all_schemes =
  [
    Smarq.Scheme.Smarq 64;
    Smarq.Scheme.Smarq 16;
    Smarq.Scheme.Smarq_no_store_reorder 64;
    Smarq.Scheme.Naive_order 64;
    Smarq.Scheme.Alat;
    Smarq.Scheme.Efficeon;
    Smarq.Scheme.None_static;
  ]

let certify_all_schemes_prop seed =
  let program = Workload.Genprog.program ~seed ~n_loops:2 ~iters:100 in
  let ref_m = Vliw.Machine.create () in
  ignore (Frontend.Interp.run ~fuel:50_000_000 ref_m program);
  List.for_all
    (fun scheme ->
      let r =
        Smarq.run_program ~fuel:50_000_000 ~unroll:4 ~certify:true ~scheme
          program
      in
      let st = r.Runtime.Driver.stats in
      if st.Runtime.Stats.certified_alias_faults > 0 then
        QCheck.Test.fail_report
          (Printf.sprintf "seed %d under %s: %d faults on certified pairs"
             seed (Smarq.Scheme.name scheme)
             st.Runtime.Stats.certified_alias_faults)
      else if
        not (Vliw.Machine.equal_guest_state ref_m r.Runtime.Driver.machine)
      then
        QCheck.Test.fail_report
          (Printf.sprintf "seed %d under %s: diverged with certification"
             seed (Smarq.Scheme.name scheme))
      else true)
    all_schemes

let suite =
  ( "disamb",
    [
      case "absint folds constants" test_absint_const_folding;
      case "absint tracks bumped entry bases" test_absint_entry_bump;
      case "absint derives mask strides" test_absint_mask_stride;
      case "separation arguments" test_separated_cases;
      case "bump pairs certified" test_certify_bump_pairs;
      case "congruence probe certified" test_certify_congruence_probe;
      case "cross-base pairs not certified" test_cross_base_not_certified;
      case "known-alias pairs never certified"
        test_known_alias_never_certified;
      qcase ~count:60 "certified pairs disjoint in execution"
        QCheck.(int_bound 10_000)
        certify_soundness_prop;
      qcase ~count:6 "all schemes sound under certification"
        QCheck.(int_bound 1_000)
        certify_all_schemes_prop;
    ] )
