type t = {
  issue_width : int;
  mem_ports : int;
  alias_registers : int;
  load_latency : int;
  int_alu_latency : int;
  mul_latency : int;
  div_latency : int;
  fp_latency : int;
  fdiv_latency : int;
  checkpoint_cycles : int;
  rollback_cycles : int;
  interp_cycles_per_instr : int;
  optimize_cycles_per_instr : int;
  schedule_cycles_per_instr : int;
  cache : Cache.config option;
}

let default =
  {
    issue_width = 4;
    mem_ports = 2;
    alias_registers = 64;
    load_latency = 3;
    int_alu_latency = 1;
    mul_latency = 3;
    div_latency = 8;
    fp_latency = 4;
    fdiv_latency = 12;
    checkpoint_cycles = 2;
    rollback_cycles = 100;
    interp_cycles_per_instr = 12;
    optimize_cycles_per_instr = 400;
    schedule_cycles_per_instr = 200;
    cache = None;
  }

let with_cache t cache = { t with cache }

let with_alias_registers t n = { t with alias_registers = n }

let latency t (i : Ir.Instr.t) =
  match i.op with
  | Ir.Instr.Load _ -> t.load_latency
  | Ir.Instr.Binop (Ir.Instr.Mul, _, _, _) -> t.mul_latency
  | Ir.Instr.Binop (Ir.Instr.Div, _, _, _) -> t.div_latency
  | Ir.Instr.Fbinop (Ir.Instr.Fdiv, _, _, _) -> t.fdiv_latency
  | Ir.Instr.Fbinop ((Ir.Instr.Fadd | Ir.Instr.Fsub | Ir.Instr.Fmul), _, _, _)
    ->
    t.fp_latency
  | Ir.Instr.Nop | Ir.Instr.Mov _ | Ir.Instr.Unop_neg _
  | Ir.Instr.Binop
      ( ( Ir.Instr.Add | Ir.Instr.Sub | Ir.Instr.And | Ir.Instr.Or
        | Ir.Instr.Xor | Ir.Instr.Shl | Ir.Instr.Shr ),
        _,
        _,
        _ )
  | Ir.Instr.Cmp _ ->
    t.int_alu_latency
  | Ir.Instr.Store _ | Ir.Instr.Branch _ | Ir.Instr.Jump _ | Ir.Instr.Exit _
  | Ir.Instr.Rotate _ | Ir.Instr.Amov _ ->
    1

let pp ppf t =
  let row name value = Format.fprintf ppf "  %-28s %s@." name value in
  Format.fprintf ppf "VLIW architecture parameters (cf. paper Table 2)@.";
  row "issue width" (string_of_int t.issue_width);
  row "memory ports" (string_of_int t.mem_ports);
  row "alias registers" (string_of_int t.alias_registers);
  row "load-to-use latency" (Printf.sprintf "%d cycles" t.load_latency);
  row "integer ALU latency" (Printf.sprintf "%d cycle" t.int_alu_latency);
  row "integer multiply latency" (Printf.sprintf "%d cycles" t.mul_latency);
  row "integer divide latency" (Printf.sprintf "%d cycles" t.div_latency);
  row "FP add/sub/mul latency" (Printf.sprintf "%d cycles" t.fp_latency);
  row "FP divide latency" (Printf.sprintf "%d cycles" t.fdiv_latency);
  row "region checkpoint cost" (Printf.sprintf "%d cycles" t.checkpoint_cycles);
  row "alias-exception rollback" (Printf.sprintf "%d cycles" t.rollback_cycles);
  row "interpreter cost"
    (Printf.sprintf "%d cycles/guest instr" t.interp_cycles_per_instr);
  row "optimizer cost"
    (Printf.sprintf "%d cycles/IR instr" t.optimize_cycles_per_instr);
  row "  of which scheduling"
    (Printf.sprintf "%d cycles/IR instr" t.schedule_cycles_per_instr);
  match t.cache with
  | None -> row "memory hierarchy" "flat (load latency only)"
  | Some c ->
    row "L1 cache"
      (Printf.sprintf "%d KiB %d-way, %dB lines"
         (c.Cache.l1.Cache.size_bytes / 1024) c.Cache.l1.Cache.ways
         c.Cache.l1.Cache.line_bytes);
    row "L2 cache"
      (Printf.sprintf "%d KiB %d-way, +%d cycles"
         (c.Cache.l2.Cache.size_bytes / 1024) c.Cache.l2.Cache.ways
         c.Cache.l2.Cache.hit_latency);
    row "memory latency" (Printf.sprintf "+%d cycles" c.Cache.memory_latency)
