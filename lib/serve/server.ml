(* The translation service: accept requests, admit or reject, batch,
   run on the domain pool, record latency.

   One request = one full dynamic-optimization run (interpret, profile,
   translate, cache, execute) of one guest program under one scheme.
   Admission is a single bounded count of accepted-but-unfinished
   requests; everything past the bound is rejected at submit time with
   no queue entry, which is the backpressure signal.  Accepted requests
   buffer into per-tenant batches of [cfg.batch] and each full batch is
   dispatched to the pool as one job, running its requests back to back
   on one worker (amortizing dispatch overhead and giving consecutive
   same-tenant requests shard affinity for free).

   Latency is recorded per request in four slices, all through
   [Runtime.Percentiles]: queue wait (submit -> worker pickup), service
   (the run itself), and the translate/execute split of service, where
   translate comes from the run's [Runtime.Stats.translate] profile. *)

type fault_spec = {
  fault_seed : int;
  fault_rate : float;
}

type deadline = {
  wall_s : float option;
  blocks : int option;
}

type config = {
  domains : int;
  queue_limit : int;
  batch : int;
  shard_policy : Tcache.Policy.t;
  tenant_budget : int option;
  retry : Retry.policy option;
  retry_budget : int option;
  retry_seed : int;
  breaker : Breaker.config option;
  chaos : Chaos.plan option;
}

let default_config =
  {
    domains = 2;
    queue_limit = 64;
    batch = 1;
    shard_policy = Tcache.Policy.Lru;
    tenant_budget = None;
    retry = None;
    retry_budget = None;
    retry_seed = 0;
    breaker = None;
    chaos = None;
  }

type request = {
  tenant : string;
  job : Exec.Matrix.job;
  shared_cache : bool;
  fault : fault_spec option;
  deadline : deadline option;
}

type resolution =
  | Done of Runtime.Driver.result
  | Timed_out of Runtime.Driver.result
  | Degraded of Runtime.Driver.result
  | Failed of exn

type reply = {
  request : request;
  resolution : resolution;
  queue_wait_s : float;
  service_s : float;
  translate_s : float;
  execute_s : float;
  worker : int;
  injected : int;
  attempts : int;
}

(* [ticket] carries its server and tenant so [await] can flush the
   awaited request's partial batch instead of deadlocking against the
   caller (the PR 6 footgun). *)
type ticket = {
  tm : Mutex.t;
  tc : Condition.t;
  mutable reply : reply option;
  t_server : t;
  t_tenant : string;
}

and pending = {
  p_request : request;
  p_ticket : ticket;
  p_submitted : float;
  p_rid : int;  (* submission sequence number, also the per-request
                   fault-seed offset *)
}

and t = {
  cfg : config;
  pool : Exec.Pool.t;
  shards : Runtime.Driver.cache Shards.t;
  inflight : int Atomic.t;  (* accepted and not yet finished *)
  m : Mutex.t;  (* guards everything below *)
  buffers : (string, pending Queue.t) Hashtbl.t;  (* per-tenant batches *)
  breakers : (string, Breaker.t) Hashtbl.t;  (* key: tenant|scheme *)
  retry_budgets : (string, Retry.budget) Hashtbl.t;  (* key: tenant *)
  mutable next_rid : int;
  mutable closed : bool;
  mutable submitted : int;
  mutable completed : int;
  mutable rejected : int;
  mutable errors : int;
  mutable timed_out : int;
  mutable degraded : int;
  mutable retries : int;
  mutable retry_budget_exhausted : int;
  mutable injected_faults : int;
  lat_queue : Runtime.Percentiles.t;
  lat_service : Runtime.Percentiles.t;
  lat_translate : Runtime.Percentiles.t;
  lat_execute : Runtime.Percentiles.t;
  lat_total : Runtime.Percentiles.t;
}

let create ?(config = default_config) () =
  if config.queue_limit < 1 then
    invalid_arg "Serve.Server.create: queue_limit < 1";
  if config.batch < 1 then invalid_arg "Serve.Server.create: batch < 1";
  Option.iter (fun p -> ignore (Retry.check_policy p)) config.retry;
  Option.iter (fun b -> ignore (Breaker.check_config b)) config.breaker;
  {
    cfg = config;
    pool = Exec.Pool.create ~domains:config.domains ();
    shards =
      Shards.create ?tenant_budget:config.tenant_budget
        ~ops:
          {
            Shards.make =
              (fun ~capacity ->
                Runtime.Driver.make_cache ?capacity
                  ~policy:config.shard_policy ());
            invalidate = Runtime.Driver.cache_invalidate;
            flush = Runtime.Driver.cache_flush;
            telemetry = Runtime.Driver.cache_telemetry;
          }
        ();
    inflight = Atomic.make 0;
    m = Mutex.create ();
    buffers = Hashtbl.create 8;
    breakers = Hashtbl.create 8;
    retry_budgets = Hashtbl.create 8;
    next_rid = 0;
    closed = false;
    submitted = 0;
    completed = 0;
    rejected = 0;
    errors = 0;
    timed_out = 0;
    degraded = 0;
    retries = 0;
    retry_budget_exhausted = 0;
    injected_faults = 0;
    lat_queue = Runtime.Percentiles.create ();
    lat_service = Runtime.Percentiles.create ();
    lat_translate = Runtime.Percentiles.create ();
    lat_execute = Runtime.Percentiles.create ();
    lat_total = Runtime.Percentiles.create ();
  }

(* Translations are specific to (program, scheme, unroll, ...) — all of
   which [job.label] names for matrix-built jobs — so the shard
   partition key must include it, or two programs sharing a guest
   label ("init") would hit each other's translations. *)
let shard_key rq = rq.tenant ^ "|" ^ rq.job.Exec.Matrix.label

(* The breaker partition key: one breaker per (tenant, scheme), so one
   misbehaving scheme of one tenant degrades without touching the
   tenant's other schemes, let alone other tenants. *)
let breaker_key rq =
  rq.tenant ^ "|" ^ Smarq.Scheme.name rq.job.Exec.Matrix.scheme

(* callers hold t.m *)
let breaker_for t rq =
  match t.cfg.breaker with
  | None -> None
  | Some cfg -> (
    let key = breaker_key rq in
    match Hashtbl.find_opt t.breakers key with
    | Some b -> Some b
    | None ->
      let b = Breaker.create ~config:cfg () in
      Hashtbl.replace t.breakers key b;
      Some b)

(* callers hold t.m *)
let retry_budget_for t tenant =
  match Hashtbl.find_opt t.retry_budgets tenant with
  | Some b -> b
  | None ->
    let b =
      match t.cfg.retry_budget with
      | Some n -> Retry.budget n
      | None -> Retry.unlimited ()
    in
    Hashtbl.replace t.retry_budgets tenant b;
    b

(* Wrap [base] hooks with the request's deadline budget.  The block
   budget is counted per driver run (deterministic — the soak harness
   relies on it); the wall budget is end-to-end from submission, checked
   every 64th dispatch to keep gettimeofday off the hot path. *)
let deadline_hooks (p : pending) (d : deadline) base =
  let blocks_seen = ref 0 in
  let calls = ref 0 in
  let wall_abs = Option.map (fun s -> p.p_submitted +. s) d.wall_s in
  {
    base with
    Runtime.Driver.deadline =
      (fun () ->
        (match d.blocks with
        | None -> false
        | Some b ->
          incr blocks_seen;
          !blocks_seen > b)
        ||
        match wall_abs with
        | None -> false
        | Some abs ->
          incr calls;
          !calls land 63 = 0 && Unix.gettimeofday () > abs);
  }

(* One driver run, on worker [worker].  The plain path (no fault, no
   shard, no deadline, no chaos) runs the exact batch-mode job function,
   which is what makes the matrix client bit-identical to
   [Exec.Matrix.run_matrix]; every other path builds the driver call
   directly so it can thread the shard, the per-request fault plan, the
   deadline hooks, and the chaos event.  [degraded] is the breaker /
   retry-exhaustion fallback: interpreter-only (hot_threshold = max_int
   builds no regions, so nothing can alias-fault), private cache, no
   fault plan, no chaos. *)
let run_one t ~worker ~degraded ~(event : Chaos.event) (p : pending) =
  let rq = p.p_request in
  let j = rq.job in
  let inert = event.stall_s = 0.0 && (not event.poison) && not event.flush in
  match (rq.fault, rq.shared_cache, rq.deadline, degraded, inert) with
  | None, false, None, false, true ->
    let o = Exec.Matrix.run_job j in
    (o.Exec.Matrix.result, o.Exec.Matrix.wall_seconds, 0)
  | fault, shared, deadline, degraded, _ ->
    (* chaos lands before the run: a stalled worker, a flushed shard (a
       cold-start storm for this request only: the shard is owned by
       the executing worker, so flushing here honors the Shards
       quiescence contract), or a poisoned request that never runs *)
    if event.stall_s > 0.0 then Unix.sleepf event.stall_s;
    if event.flush && shared && not degraded then
      Runtime.Driver.cache_flush
        (Shards.shard t.shards ~tenant:(shard_key rq) ~worker);
    if event.poison then raise (Chaos.poison_exn ~rid:p.p_rid);
    let config =
      match j.Exec.Matrix.config with
      | Some c -> c
      | None -> Smarq.config_for j.Exec.Matrix.scheme
    in
    let scheme = Smarq.Scheme.to_driver j.Exec.Matrix.scheme in
    let plan =
      if degraded then None
      else
        Option.map
          (fun f ->
            (* seed + rid: each request replays its own deterministic
               campaign, fixed by the submission sequence *)
            Verify.Fault.plan ~seed:(f.fault_seed + p.p_rid)
              ~rate:f.fault_rate ())
          fault
    in
    let scheme =
      match plan with
      | None -> scheme
      | Some plan ->
        {
          scheme with
          Runtime.Driver.detector =
            Verify.Fault.wrap plan scheme.Runtime.Driver.detector;
        }
    in
    let base_hooks =
      match plan with
      | Some plan -> Verify.Fault.hooks plan
      | None -> Runtime.Driver.no_hooks
    in
    let hooks =
      match deadline with
      | None -> base_hooks
      | Some d -> deadline_hooks p d base_hooks
    in
    let program = j.Exec.Matrix.program () in
    let t0 = Unix.gettimeofday () in
    let result =
      if degraded then
        Runtime.Driver.run ~config ~hot_threshold:max_int
          ~fuel:j.Exec.Matrix.fuel ~unroll:j.Exec.Matrix.unroll ~hooks
          ~verify:j.Exec.Matrix.verify ~scheme program
      else if shared then
        let tcache = Shards.shard t.shards ~tenant:(shard_key rq) ~worker in
        Runtime.Driver.run ~config ~fuel:j.Exec.Matrix.fuel
          ~unroll:j.Exec.Matrix.unroll ~tcache ~hooks
          ~verify:j.Exec.Matrix.verify ~scheme program
      else
        Runtime.Driver.run ~config ~fuel:j.Exec.Matrix.fuel
          ~unroll:j.Exec.Matrix.unroll
          ~tcache_policy:j.Exec.Matrix.tcache_policy
          ?tcache_capacity:j.Exec.Matrix.tcache_capacity ~hooks
          ~verify:j.Exec.Matrix.verify ~scheme program
    in
    let wall = Unix.gettimeofday () -. t0 in
    let injected =
      match plan with Some p -> Verify.Fault.total_injected p | None -> 0
    in
    (result, wall, injected)

(* One request: breaker admission, then up to [max_attempts] normal
   runs with jittered backoff between failures (each retry paid from
   the tenant's budget), then — if the breaker shed it or every attempt
   raised — the interpreter-only degraded fallback.  The ladder
   guarantees exactly one resolution per request:

     Done       a normal attempt completed
     Timed_out  a run outlived its deadline budget (terminal: a request
                that was too slow once is not retried)
     Degraded   breaker-shed, or retries exhausted and the conservative
                fallback served it
     Failed     the degraded fallback itself raised (a genuine bug)

   Shed requests never feed the breaker; admitted (Run/Probe) requests
   observe Success on completion and Failure on timeout or exhaustion,
   which is what drives open -> half-open -> closed recovery. *)
let exec_one t ~worker (p : pending) =
  let started = Unix.gettimeofday () in
  let queue_wait_s = max 0.0 (started -. p.p_submitted) in
  let rq = p.p_request in
  let decision, breaker =
    match t.cfg.breaker with
    | None -> (Breaker.Run, None)
    | Some _ ->
      Mutex.lock t.m;
      let b = breaker_for t rq in
      let d = match b with None -> Breaker.Run | Some b -> Breaker.admit b in
      Mutex.unlock t.m;
      (d, b)
  in
  let observe obs =
    match breaker with
    | None -> ()
    | Some b ->
      Mutex.lock t.m;
      Breaker.observe b obs;
      Mutex.unlock t.m
  in
  let take_retry_token () =
    Mutex.lock t.m;
    let budget = retry_budget_for t rq.tenant in
    let got = Retry.try_take budget in
    if got then t.retries <- t.retries + 1
    else t.retry_budget_exhausted <- t.retry_budget_exhausted + 1;
    Mutex.unlock t.m;
    got
  in
  let run_degraded ~attempts =
    match run_one t ~worker ~degraded:true ~event:Chaos.inert p with
    | result, wall, _ -> (
      match result.Runtime.Driver.outcome with
      | Runtime.Driver.Deadline_exceeded ->
        (Timed_out result, wall, 0, attempts)
      | _ -> (Degraded result, wall, 0, attempts))
    | exception e -> (Failed e, Unix.gettimeofday () -. started, 0, attempts)
  in
  let run_normal () =
    let prng = Verify.Prng.create ~seed:(t.cfg.retry_seed + p.p_rid) in
    let rec attempt n =
      let event =
        match t.cfg.chaos with
        | None -> Chaos.inert
        | Some plan -> Chaos.draw plan ~rid:p.p_rid ~attempt:n
      in
      match run_one t ~worker ~degraded:false ~event p with
      | result, wall, injected -> (
        match result.Runtime.Driver.outcome with
        | Runtime.Driver.Deadline_exceeded ->
          `Settled (Timed_out result, wall, injected, n)
        | _ -> `Settled (Done result, wall, injected, n))
      | exception e ->
        let policy_allows =
          match t.cfg.retry with
          | None -> false
          | Some pol -> n < pol.Retry.max_attempts
        in
        if policy_allows && take_retry_token () then begin
          let pol = Option.get t.cfg.retry in
          let delay = Retry.backoff_s pol ~prng ~attempt:n in
          if delay > 0.0 then Unix.sleepf delay;
          attempt (n + 1)
        end
        else `Exhausted (e, n)
    in
    attempt 1
  in
  let fallback_enabled = t.cfg.retry <> None || t.cfg.breaker <> None in
  let resolution, wall, injected, attempts =
    match decision with
    | Breaker.Shed -> run_degraded ~attempts:1
    | Breaker.Run | Breaker.Probe -> (
      match run_normal () with
      | `Settled ((Done _, _, _, _) as s) ->
        observe Breaker.Success;
        s
      | `Settled s ->
        observe Breaker.Failure;
        s
      | `Exhausted (e, n) ->
        observe Breaker.Failure;
        if fallback_enabled then run_degraded ~attempts:(n + 1)
        else (Failed e, Unix.gettimeofday () -. started, 0, n))
  in
  let translate_s =
    match resolution with
    | Done r | Timed_out r | Degraded r ->
      Runtime.Profile.total r.Runtime.Driver.stats.Runtime.Stats.translate
    | Failed _ -> 0.0
  in
  let reply =
    {
      request = rq;
      resolution;
      queue_wait_s;
      service_s = wall;
      translate_s;
      execute_s = max 0.0 (wall -. translate_s);
      worker;
      injected;
      attempts;
    }
  in
  Mutex.lock t.m;
  (match reply.resolution with
  | Done _ -> t.completed <- t.completed + 1
  | Timed_out _ -> t.timed_out <- t.timed_out + 1
  | Degraded _ -> t.degraded <- t.degraded + 1
  | Failed _ -> t.errors <- t.errors + 1);
  t.injected_faults <- t.injected_faults + reply.injected;
  Runtime.Percentiles.add t.lat_queue reply.queue_wait_s;
  Runtime.Percentiles.add t.lat_service reply.service_s;
  Runtime.Percentiles.add t.lat_translate reply.translate_s;
  Runtime.Percentiles.add t.lat_execute reply.execute_s;
  Runtime.Percentiles.add t.lat_total (reply.queue_wait_s +. reply.service_s);
  Mutex.unlock t.m;
  Atomic.decr t.inflight;
  Mutex.lock p.p_ticket.tm;
  p.p_ticket.reply <- Some reply;
  Condition.broadcast p.p_ticket.tc;
  Mutex.unlock p.p_ticket.tm

let dispatch t batch =
  Exec.Pool.submit t.pool (fun worker ->
      List.iter (exec_one t ~worker) batch)

(* callers hold t.m *)
let drain_buffer t tenant q =
  if not (Queue.is_empty q) then begin
    let batch = List.of_seq (Queue.to_seq q) in
    Queue.clear q;
    Hashtbl.remove t.buffers tenant;
    dispatch t batch
  end

let flush t =
  Mutex.lock t.m;
  let tenants =
    Hashtbl.fold (fun tenant q acc -> (tenant, q) :: acc) t.buffers []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter (fun (tenant, q) -> drain_buffer t tenant q) tenants;
  Mutex.unlock t.m

let submit t request =
  let n = Atomic.fetch_and_add t.inflight 1 in
  if n >= t.cfg.queue_limit then begin
    (* over the admission bound: reject with no queue entry — the
       backpressure half of admission control *)
    Atomic.decr t.inflight;
    Mutex.lock t.m;
    t.rejected <- t.rejected + 1;
    Mutex.unlock t.m;
    `Rejected
  end
  else begin
    Mutex.lock t.m;
    if t.closed then begin
      (* racing shutdown: a draining server sheds load like a full one
         instead of throwing at the client *)
      Atomic.decr t.inflight;
      t.rejected <- t.rejected + 1;
      Mutex.unlock t.m;
      `Rejected
    end
    else begin
    let ticket =
      {
        tm = Mutex.create ();
        tc = Condition.create ();
        reply = None;
        t_server = t;
        t_tenant = request.tenant;
      }
    in
    let p =
      {
        p_request = request;
        p_ticket = ticket;
        p_submitted = Unix.gettimeofday ();
        p_rid = t.next_rid;
      }
    in
    t.next_rid <- t.next_rid + 1;
    t.submitted <- t.submitted + 1;
    let q =
      match Hashtbl.find_opt t.buffers request.tenant with
      | Some q -> q
      | None ->
        let q = Queue.create () in
        Hashtbl.replace t.buffers request.tenant q;
        q
    in
    Queue.push p q;
    if Queue.length q >= t.cfg.batch then drain_buffer t request.tenant q;
    Mutex.unlock t.m;
    `Accepted ticket
    end
  end

let await ticket =
  (* If the awaited request is still sitting in its tenant's partial
     batch, dispatch that batch now: blocking on a buffered request
     would otherwise deadlock the caller against its own undelivered
     work (the callers-must-remember-[flush] footgun). *)
  let s = ticket.t_server in
  Mutex.lock s.m;
  (match Hashtbl.find_opt s.buffers ticket.t_tenant with
  | Some q when Queue.fold (fun acc p -> acc || p.p_ticket == ticket) false q
    ->
    drain_buffer s ticket.t_tenant q
  | _ -> ());
  Mutex.unlock s.m;
  Mutex.lock ticket.tm;
  let rec wait () =
    match ticket.reply with
    | Some r ->
      Mutex.unlock ticket.tm;
      r
    | None ->
      Condition.wait ticket.tc ticket.tm;
      wait ()
  in
  wait ()

(* Batch translation on the service's own pool: the server owns the
   long-running worker domains, so parallel replay rides them directly
   instead of nesting a second pool inside a pool worker. *)
let translate t ?jobs ?pipeline ~config requests =
  Mutex.lock t.m;
  let closed = t.closed in
  Mutex.unlock t.m;
  if closed then invalid_arg "Serve.Server.translate: server is shut down";
  Exec.Translate.replay ~pool:t.pool ?jobs ?pipeline ~config requests

let invalidate t label = Shards.invalidate t.shards label
let shards_telemetry ?tenant t = Shards.telemetry ?tenant t.shards
let shard_count t = Shards.shard_count t.shards
let inflight t = Atomic.get t.inflight
let pool_health t = Exec.Pool.health t.pool

let shutdown t =
  Mutex.lock t.m;
  let already = t.closed in
  t.closed <- true;
  if not already then begin
    (* dispatch the partial batches so shutdown drains them too *)
    let tenants =
      Hashtbl.fold (fun tenant q acc -> (tenant, q) :: acc) t.buffers []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    in
    List.iter (fun (tenant, q) -> drain_buffer t tenant q) tenants
  end;
  Mutex.unlock t.m;
  (* idempotent and drains in-flight work; see Exec.Pool *)
  Exec.Pool.shutdown t.pool

(* The matrix as a service client: every job becomes one fresh-cache
   no-fault request (so the worker executes [Exec.Matrix.run_job]
   verbatim), the queue bound admits all of them, and the outcomes are
   awaited in job-list order — the same semantics as
   [Exec.Matrix.run_matrix], bit-identical modulo wall clocks. *)
let run_matrix ?domains jobs =
  let domains =
    match domains with Some d -> d | None -> Exec.Pool.default_domains ()
  in
  let config =
    {
      default_config with
      domains;
      queue_limit = max 1 (List.length jobs);
      batch = 1;
    }
  in
  let t = create ~config () in
  let tickets =
    List.map
      (fun job ->
        match
          submit t
            {
              tenant = "matrix";
              job;
              shared_cache = false;
              fault = None;
              deadline = None;
            }
        with
        | `Accepted ticket -> ticket
        | `Rejected ->
          (* unreachable: queue_limit covers the whole job list *)
          shutdown t;
          invalid_arg "Serve.Server.run_matrix: rejected"
      )
      jobs
  in
  let replies = List.map await tickets in
  shutdown t;
  List.map
    (fun r ->
      match r.resolution with
      | Done result ->
        {
          Exec.Matrix.job = r.request.job;
          result;
          wall_seconds = r.service_s;
        }
      | Failed e -> raise e
      | Timed_out _ | Degraded _ ->
        (* unreachable: matrix requests carry no deadline and the
           private server configures no breaker *)
        invalid_arg "Serve.Server.run_matrix: unexpected resolution")
    replies

type report = {
  submitted : int;
  completed : int;
  rejected : int;
  errors : int;
  timed_out : int;
  degraded : int;
  retries : int;
  retry_budget_exhausted : int;
  breaker_transitions : int;
  breaker_sheds : int;
  breakers_open : int;
  chaos_stalls : int;
  chaos_poisons : int;
  chaos_flushes : int;
  injected_faults : int;
  sim_seconds : float;  (* sum of per-request service time *)
  queue_wait : Runtime.Percentiles.summary;
  service : Runtime.Percentiles.summary;
  translate : Runtime.Percentiles.summary;
  execute : Runtime.Percentiles.summary;
  total : Runtime.Percentiles.summary;
}

let report_json (r : report) =
  Printf.sprintf
    "{\"submitted\":%d,\"completed\":%d,\"rejected\":%d,\"errors\":%d,\
     \"timed_out\":%d,\"degraded\":%d,\"retries\":%d,\
     \"retry_budget_exhausted\":%d,\"breaker_transitions\":%d,\
     \"breaker_sheds\":%d,\"breakers_open\":%d,\"chaos_stalls\":%d,\
     \"chaos_poisons\":%d,\"chaos_flushes\":%d,\
     \"injected_faults\":%d,\"sim_seconds\":%.6f,\"queue_wait\":%s,\
     \"service\":%s,\"translate\":%s,\"execute\":%s,\"total\":%s}"
    r.submitted r.completed r.rejected r.errors r.timed_out r.degraded
    r.retries r.retry_budget_exhausted r.breaker_transitions r.breaker_sheds
    r.breakers_open r.chaos_stalls r.chaos_poisons r.chaos_flushes
    r.injected_faults r.sim_seconds
    (Runtime.Percentiles.summary_json ~unit:"s" r.queue_wait)
    (Runtime.Percentiles.summary_json ~unit:"s" r.service)
    (Runtime.Percentiles.summary_json ~unit:"s" r.translate)
    (Runtime.Percentiles.summary_json ~unit:"s" r.execute)
    (Runtime.Percentiles.summary_json ~unit:"s" r.total)

let pp_report ppf (r : report) =
  Format.fprintf ppf
    "@[<v>requests: %d accepted, %d completed, %d rejected, %d errors%s@,"
    r.submitted r.completed r.rejected r.errors
    (if r.injected_faults > 0 then
       Printf.sprintf " (%d faults injected)" r.injected_faults
     else "");
  if r.timed_out > 0 || r.degraded > 0 || r.retries > 0 then
    Format.fprintf ppf
      "resilience: %d timed out, %d degraded, %d retries (%d budget-refused)@,"
      r.timed_out r.degraded r.retries r.retry_budget_exhausted;
  if r.breaker_transitions > 0 || r.breaker_sheds > 0 then
    Format.fprintf ppf
      "breakers: %d transitions, %d sheds, %d open now@,"
      r.breaker_transitions r.breaker_sheds r.breakers_open;
  if r.chaos_stalls > 0 || r.chaos_poisons > 0 || r.chaos_flushes > 0 then
    Format.fprintf ppf "chaos: %d stalls, %d poisons, %d flushes@,"
      r.chaos_stalls r.chaos_poisons r.chaos_flushes;
  Format.fprintf ppf "queue wait: %a@," Runtime.Percentiles.pp_summary
    r.queue_wait;
  Format.fprintf ppf "service:    %a@," Runtime.Percentiles.pp_summary
    r.service;
  Format.fprintf ppf "translate:  %a@," Runtime.Percentiles.pp_summary
    r.translate;
  Format.fprintf ppf "execute:    %a@," Runtime.Percentiles.pp_summary
    r.execute;
  Format.fprintf ppf "total:      %a@]" Runtime.Percentiles.pp_summary r.total

let report t =
  Mutex.lock t.m;
  let breaker_transitions, breaker_sheds, breakers_open =
    Hashtbl.fold
      (fun _ b (tr, sh, op) ->
        ( tr + Breaker.transitions b,
          sh + Breaker.shed_total b,
          op + if Breaker.state b = Breaker.Open then 1 else 0 ))
      t.breakers (0, 0, 0)
  in
  let chaos =
    match t.cfg.chaos with
    | Some plan -> Chaos.counters plan
    | None -> { Chaos.stalls = 0; poisons = 0; flushes = 0 }
  in
  let r =
    {
      submitted = t.submitted;
      completed = t.completed;
      rejected = t.rejected;
      errors = t.errors;
      timed_out = t.timed_out;
      degraded = t.degraded;
      retries = t.retries;
      retry_budget_exhausted = t.retry_budget_exhausted;
      breaker_transitions;
      breaker_sheds;
      breakers_open;
      chaos_stalls = chaos.Chaos.stalls;
      chaos_poisons = chaos.Chaos.poisons;
      chaos_flushes = chaos.Chaos.flushes;
      injected_faults = t.injected_faults;
      sim_seconds = Runtime.Percentiles.total t.lat_service;
      queue_wait = Runtime.Percentiles.summary t.lat_queue;
      service = Runtime.Percentiles.summary t.lat_service;
      translate = Runtime.Percentiles.summary t.lat_translate;
      execute = Runtime.Percentiles.summary t.lat_execute;
      total = Runtime.Percentiles.summary t.lat_total;
    }
  in
  Mutex.unlock t.m;
  r
