type t = {
  mutable next_id : int;
  mutable next_label : int;
  mutable blocks : Ir.Block.t list;
}

let create () = { next_id = 1; next_label = 0; blocks = [] }

let label t stem =
  let l = Printf.sprintf "%s_%d" stem t.next_label in
  t.next_label <- t.next_label + 1;
  l

let instr t op =
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  Ir.Instr.make ~id op

let instrs t ops = List.map (instr t) ops

let add_block t lbl body terminator =
  t.blocks <- Ir.Block.make ~label:lbl ~body terminator :: t.blocks

let straight t lbl body ~next =
  add_block t lbl body (Ir.Block.Fallthrough next)

let loop_back t lbl body ~counter ~back_to ~exit_to ~iters =
  let dec =
    instr t (Ir.Instr.Binop (Ir.Instr.Sub, counter, Ir.Instr.Reg counter,
                             Ir.Instr.Imm 1))
  in
  (* R31 is the conventional assembler temporary: guest binaries must
     not contain optimizer temps, which have no binary encoding *)
  let cond_reg = Ir.Reg.R 31 in
  let cmp =
    instr t
      (Ir.Instr.Cmp (Ir.Instr.Gt, cond_reg, Ir.Instr.Reg counter,
                     Ir.Instr.Imm 0))
  in
  let p = float_of_int (iters - 1) /. float_of_int iters in
  add_block t lbl
    (body @ [ dec; cmp ])
    (Ir.Block.Cond
       {
         cond = Ir.Instr.Reg cond_reg;
         taken = back_to;
         fallthrough = exit_to;
         taken_probability = p;
       })

let program t ~entry = Ir.Program.make ~entry (List.rev t.blocks)

let r n = Ir.Instr.Reg (Ir.Reg.R n)
let f n = Ir.Instr.Reg (Ir.Reg.F n)
let i n = Ir.Instr.Imm n
let addr base disp = { Ir.Instr.base; disp }
