(** Counters describing a translation cache's life: the raw material
    for cache-sizing decisions and the bench harness's JSON output. *)

type t = {
  mutable hits : int;  (** lookups that found a resident translation *)
  mutable misses : int;  (** lookups that fell through to the interpreter *)
  mutable insertions : int;
  mutable evictions : int;  (** single-entry evictions under Lru/Fifo *)
  mutable flushes : int;  (** whole-cache drops (Flush_all or explicit) *)
  mutable invalidations : int;  (** explicit single-label invalidations *)
  mutable rejections : int;
      (** regions larger than the whole capacity, never cached *)
  mutable chains_installed : int;
  mutable chains_broken : int;
  mutable chain_follows : int;
      (** dispatches that skipped the lookup via a chain link *)
  mutable peak_resident_instrs : int;
      (** high-water mark of resident scheduled instructions *)
}

val create : unit -> t

val snapshot : t -> t
(** An independent copy — freeze a point in time so a later {!delta}
    can attribute activity to one window (e.g. one driver run over a
    shared, long-lived cache). *)

val delta : since:t -> t -> t
(** [delta ~since now] is the activity between the [since] snapshot and
    [now]: every counter subtracted.  [peak_resident_instrs] is not a
    counter and carries [now]'s value (the high-water mark is global to
    the cache's life). *)

val add : into:t -> t -> unit
(** Fold [t] into [into]: counters add, the peak takes the max — the
    aggregation used when summing shard telemetries. *)

val fields : t -> (string * int) list
(** Stable (name, value) pairs, for JSON or tabular emission. *)

val pp : Format.formatter -> t -> unit
