(* The dynamic optimization system end to end: caching, rollback
   servicing, conservative re-optimization, pinning, statistics. *)

open Helpers
module I = Ir.Instr

(* A loop with a genuine periodic alias: every 8th iteration the probe
   store hits the same address as the lane store. *)
let colliding_loop ~iters =
  let bld = Workload.Builder.create () in
  let a = r 1 and b = r 2 and idx = r 4 in
  Workload.Builder.straight bld "init"
    (Workload.Builder.instrs bld
       [
         I.Mov (a, I.Imm 0x1000);
         I.Mov (b, I.Imm 0x2000);
         I.Mov (idx, I.Imm iters);
       ])
    ~next:"loop";
  let body =
    Workload.Builder.instrs bld
      [
        (* probe address = a + (idx & 7) * 64: hits a+0 every 8 iters *)
        I.Binop (I.And, r 6, I.Reg idx, I.Imm 7);
        I.Binop (I.Mul, r 6, I.Reg (r 6), I.Imm 64);
        I.Binop (I.Add, r 7, I.Reg a, I.Reg (r 6));
        I.Load { dst = f 1; addr = { I.base = b; disp = 0 }; width = 8;
                 annot = Ir.Annot.none };
        I.Store { src = I.Reg (f 1); addr = { I.base = r 7; disp = 0 };
                  width = 8; annot = Ir.Annot.none };
        I.Load { dst = f 2; addr = { I.base = a; disp = 0 }; width = 8;
                 annot = Ir.Annot.none };
        I.Fbinop (I.Fadd, f 3, I.Reg (f 2), I.Reg (f 1));
        I.Store { src = I.Reg (f 3); addr = { I.base = b; disp = 8 };
                  width = 8; annot = Ir.Annot.none };
      ]
  in
  Workload.Builder.loop_back bld "loop" body ~counter:idx ~back_to:"loop"
    ~exit_to:"end" ~iters;
  Workload.Builder.add_block bld "end" [] Ir.Block.Halt;
  Workload.Builder.program bld ~entry:"init"

let run_scheme ?(fuel = 10_000_000) scheme program =
  Smarq.run_program ~fuel ~scheme program

let reference program =
  let m = Vliw.Machine.create () in
  ignore (Frontend.Interp.run ~fuel:50_000_000 m program);
  m

let test_rollback_then_convergence () =
  let program = colliding_loop ~iters:400 in
  let ref_m = reference program in
  let r = run_scheme (Smarq.Scheme.Smarq 64) program in
  let st = r.Runtime.Driver.stats in
  Alcotest.(check bool) "at least one rollback" true (st.Runtime.Stats.rollbacks >= 1);
  Alcotest.(check bool) "few rollbacks (conservative reopt sticks)" true
    (st.Runtime.Stats.rollbacks <= 5);
  Alcotest.(check bool) "state correct" true
    (Vliw.Machine.equal_guest_state ref_m r.Runtime.Driver.machine)

let test_region_reuse () =
  let program = colliding_loop ~iters:400 in
  let r = run_scheme (Smarq.Scheme.Smarq 64) program in
  let st = r.Runtime.Driver.stats in
  Alcotest.(check bool) "hot loop runs in regions" true
    (st.Runtime.Stats.region_entries > 300);
  Alcotest.(check bool) "few regions built" true
    (st.Runtime.Stats.regions_built <= 4)

let test_none_scheme_never_rolls_back () =
  let program = colliding_loop ~iters:300 in
  let r = run_scheme Smarq.Scheme.None_ program in
  Alcotest.(check int) "no rollbacks without speculation" 0
    r.Runtime.Driver.stats.Runtime.Stats.rollbacks

let test_speedup_ordering () =
  (* a load-latency-bound workload where hoisting loads above may-alias
     stores shortens the schedule substantially *)
  let program =
    Workload.Specfp.program ~scale:2 (Workload.Specfp.find "wupwise")
  in
  let smarq = run_scheme ~fuel:50_000_000 (Smarq.Scheme.Smarq 64) program in
  let none = run_scheme ~fuel:50_000_000 Smarq.Scheme.None_ program in
  Alcotest.(check bool) "speculation wins" true
    (smarq.Runtime.Driver.stats.Runtime.Stats.total_cycles
    < none.Runtime.Driver.stats.Runtime.Stats.total_cycles)

let test_alat_pinning_terminates () =
  (* a persistent ALAT false positive (the rmw pattern) must converge
     through pinning rather than rolling back forever *)
  let bld = Workload.Builder.create () in
  let regs =
    Workload.Kernels.
      { a = r 1; b = r 2; c = r 3; idx = r 4 }
  in
  Workload.Builder.straight bld "init"
    (Workload.Builder.instrs bld
       [
         I.Mov (regs.Workload.Kernels.a, I.Imm 0x1000);
         I.Mov (regs.Workload.Kernels.b, I.Imm 0x2000);
         I.Mov (regs.Workload.Kernels.c, I.Imm 0x3000);
         I.Mov (regs.Workload.Kernels.idx, I.Imm 300);
       ])
    ~next:"loop";
  let body = Workload.Kernels.rmw bld regs ~width:8 ~updates:2 () in
  Workload.Builder.loop_back bld "loop" body
    ~counter:regs.Workload.Kernels.idx ~back_to:"loop" ~exit_to:"end"
    ~iters:300;
  Workload.Builder.add_block bld "end" [] Ir.Block.Halt;
  let program = Workload.Builder.program bld ~entry:"init" in
  let ref_m = reference program in
  let r = run_scheme Smarq.Scheme.Alat program in
  let st = r.Runtime.Driver.stats in
  Alcotest.(check bool) "ALAT hits false positives" true
    (st.Runtime.Stats.rollbacks >= 1);
  Alcotest.(check bool) "bounded by pinning" true
    (st.Runtime.Stats.rollbacks <= 12);
  Alcotest.(check bool) "state correct" true
    (Vliw.Machine.equal_guest_state ref_m r.Runtime.Driver.machine);
  (* SMARQ's anti-constraints make the same pattern check-free *)
  let r2 = run_scheme (Smarq.Scheme.Smarq 64) program in
  Alcotest.(check int) "SMARQ has no false positive here" 0
    r2.Runtime.Driver.stats.Runtime.Stats.rollbacks

(* The rmw pattern is a persistent ALAT false positive: the same
   (setter, checker) pair violates on every execution until the runtime
   escalates from known-alias ordering to pinning both operations out
   of speculation entirely. *)
let rmw_program ~iters =
  let bld = Workload.Builder.create () in
  let regs =
    Workload.Kernels.{ a = r 1; b = r 2; c = r 3; idx = r 4 }
  in
  Workload.Builder.straight bld "init"
    (Workload.Builder.instrs bld
       [
         I.Mov (regs.Workload.Kernels.a, I.Imm 0x1000);
         I.Mov (regs.Workload.Kernels.b, I.Imm 0x2000);
         I.Mov (regs.Workload.Kernels.c, I.Imm 0x3000);
         I.Mov (regs.Workload.Kernels.idx, I.Imm iters);
       ])
    ~next:"loop";
  let body = Workload.Kernels.rmw bld regs ~width:8 ~updates:2 () in
  Workload.Builder.loop_back bld "loop" body
    ~counter:regs.Workload.Kernels.idx ~back_to:"loop" ~exit_to:"end"
    ~iters;
  Workload.Builder.add_block bld "end" [] Ir.Block.Halt;
  Workload.Builder.program bld ~entry:"init"

let test_same_pair_twice_pins () =
  let program = rmw_program ~iters:300 in
  let ref_m = reference program in
  let r = run_scheme Smarq.Scheme.Alat program in
  let st = r.Runtime.Driver.stats in
  (* first violation learns the pair; the second (same pair — an ALAT
     false positive survives the ordering constraint) pins both ops *)
  Alcotest.(check bool) "same pair violated twice" true
    (st.Runtime.Stats.rollbacks >= 2);
  Alcotest.(check bool) "both ops pinned" true
    (st.Runtime.Stats.pinned_ops >= 2);
  Alcotest.(check bool) "pinning converges" true
    (st.Runtime.Stats.rollbacks <= 12);
  Alcotest.(check bool) "state correct" true
    (Vliw.Machine.equal_guest_state ref_m r.Runtime.Driver.machine);
  (* SMARQ never faults here, so it must never pin either *)
  let r2 = run_scheme (Smarq.Scheme.Smarq 64) program in
  Alcotest.(check int) "SMARQ pins nothing" 0
    r2.Runtime.Driver.stats.Runtime.Stats.pinned_ops

let test_max_reopts_gives_up () =
  let program = colliding_loop ~iters:400 in
  let ref_m = reference program in
  let r =
    Runtime.Driver.run
      ~config:(Vliw.Config.with_alias_registers Vliw.Config.default 64)
      ~max_reopts:0 ~fuel:10_000_000
      ~scheme:(Runtime.Driver.scheme_smarq ~ar_count:64 ())
      program
  in
  let st = r.Runtime.Driver.stats in
  Alcotest.(check int) "gave-up region counted" 1
    st.Runtime.Stats.gave_up_regions;
  (* the very first violation exceeds the budget; the unspeculated
     rebuild can never fault again *)
  Alcotest.(check int) "exactly one rollback" 1 st.Runtime.Stats.rollbacks;
  Alcotest.(check bool) "still runs as a region" true
    (st.Runtime.Stats.region_entries > 300);
  Alcotest.(check bool) "state correct" true
    (Vliw.Machine.equal_guest_state ref_m r.Runtime.Driver.machine)

let test_stats_accounting () =
  let program = colliding_loop ~iters:300 in
  let r = run_scheme (Smarq.Scheme.Smarq 64) program in
  let st = r.Runtime.Driver.stats in
  Alcotest.(check int) "cycles add up" st.Runtime.Stats.total_cycles
    (st.Runtime.Stats.interp_cycles + st.Runtime.Stats.region_cycles
    + st.Runtime.Stats.optimize_cycles);
  Alcotest.(check bool) "constraint stats populated" true
    (st.Runtime.Stats.check_constraints > 0);
  let chk, _anti = Runtime.Stats.constraints_per_mem_op st in
  Alcotest.(check bool) "constraint density sane" true (chk > 0.0 && chk < 10.0)

let test_suite_benchmarks_equivalent () =
  (* the full SPECFP-like suite at scale 1 under the flagship scheme *)
  List.iter
    (fun (b : Workload.Specfp.bench) ->
      let program = Workload.Specfp.program b in
      let ref_m = reference program in
      let r = run_scheme (Smarq.Scheme.Smarq 64) program in
      if not (Vliw.Machine.equal_guest_state ref_m r.Runtime.Driver.machine)
      then Alcotest.failf "%s diverged" b.Workload.Specfp.name)
    Workload.Specfp.suite

let test_scheme_parsing () =
  Alcotest.(check string) "smarq64" "smarq64"
    (Smarq.Scheme.name (Smarq.Scheme.of_string "smarq64"));
  Alcotest.(check string) "smarq default" "smarq64"
    (Smarq.Scheme.name (Smarq.Scheme.of_string "smarq"));
  Alcotest.(check string) "itanium alias" "alat"
    (Smarq.Scheme.name (Smarq.Scheme.of_string "Itanium"));
  Alcotest.check_raises "unknown scheme"
    (Invalid_argument "unknown scheme \"bogus\"") (fun () ->
      ignore (Smarq.Scheme.of_string "bogus"))

let suite =
  ( "runtime",
    [
      case "rollback then convergence" test_rollback_then_convergence;
      case "regions are reused" test_region_reuse;
      case "no speculation, no rollbacks" test_none_scheme_never_rolls_back;
      case "speculation beats baseline" test_speedup_ordering;
      case "ALAT false positives converge by pinning"
        test_alat_pinning_terminates;
      case "re-opt ladder: same pair twice pins both ops"
        test_same_pair_twice_pins;
      case "re-opt ladder: exceeding max_reopts gives up speculation"
        test_max_reopts_gives_up;
      case "statistics accounting" test_stats_accounting;
      case "benchmark suite equivalence (smarq64)"
        test_suite_benchmarks_equivalent;
      case "scheme parsing" test_scheme_parsing;
    ] )
