lib/workload/kernels.mli: Builder Ir
