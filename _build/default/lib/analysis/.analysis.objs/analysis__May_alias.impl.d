lib/analysis/may_alias.ml: Array Const_prop Format Hashtbl Ir List Option
